package core

import (
	"fmt"

	"abred/internal/coll"
	"abred/internal/mpi"
)

// Reduce is the application-bypass reduction (§V). It is call-compatible
// with coll.Reduce: every rank calls it, recvbuf receives the result at
// root. Root and leaf ranks, and messages beyond the eager limit, fall
// back to the default synchronous path (§V-B); internal ranks run the
// split synchronous/asynchronous logic of Figs. 3 and 5 and may return
// before all of their children have arrived.
func (e *Engine) Reduce(c *mpi.Comm, sendbuf, recvbuf []byte, count int, dt mpi.Datatype, op mpi.Op, root int) {
	pr := e.pr
	if c.Proc() != pr {
		panic("core: communicator belongs to a different process")
	}
	tIn := pr.P.Now()
	defer func() { e.trace('R', tIn, pr.P.Now()) }()
	n := count * dt.Size()
	seq := c.NextSeq(mpi.CtxReduce)

	if n > pr.CM.C.EagerThreshold && !e.rendezvousAB {
		// Rendezvous-sized messages: standard reduction (§V-B). With
		// EnableRendezvousAB the bypass path below handles them too.
		e.Metrics.SizeFallbacks++
		coll.ReduceWithSeq(c, seq, sendbuf, recvbuf, count, dt, op, root, false)
		return
	}

	rank, size := c.Rank(), c.Size()
	// Topology-aware trees are keyed by world (root, size); on a
	// sub-communicator a size collision would pick up the wrong shape,
	// so sub-comms always use the flat binomial tree.
	var tree *coll.TopoTree
	if c.IsWorld() {
		tree = e.treeFor(root, size)
	}

	if rank == root {
		// The root must block until the reduction completes (the MPI
		// standard makes MPI_Reduce blocking), so it gains nothing from
		// bypass and uses the default synchronous code (§II, §V-B). Its
		// children still send collective-typed packets; the Fig. 4 root
		// check passes them through to default matching.
		e.Metrics.RootReductions++
		if tree != nil {
			coll.ReduceTreeOnKind(c, tree, mpi.CtxReduce, seq, sendbuf, recvbuf, count, dt, op, true)
		} else {
			coll.ReduceWithSeq(c, seq, sendbuf, recvbuf, count, dt, op, root, true)
		}
		return
	}
	leaf := coll.ChildCount(rank, root, size) == 0
	if tree != nil {
		leaf = tree.ChildCount(rank) == 0
	}
	if leaf {
		// A leaf's only action is one send to its parent (§II).
		e.Metrics.LeafReductions++
		parent := coll.Parent(rank, root, size)
		if tree != nil {
			parent = tree.Parent(rank)
		}
		pr.Send(mpi.SendArgs{
			Dst: c.World(parent), Ctx: c.Ctx(mpi.CtxReduce), Tag: seqTag(seq), Data: sendbuf[:n],
			Collective: true, Root: int32(c.World(root)), Seq: seq,
		})
		return
	}

	// Internal node: the synchronous component of Fig. 3.
	e.Metrics.ABReductions++
	d := e.beginInternal(c, mpi.CtxReduce, seq, sendbuf, count, dt, op, root, nil, nil)
	e.syncPhase(d, size, count)
}

// beginInternal disables signals, builds the reduce descriptor and
// enqueues it, then consumes any early messages already buffered in the
// AB unexpected queue (Fig. 3: Disable signals → Enqueue reduce
// descriptor; §IV-C).
func (e *Engine) beginInternal(c *mpi.Comm, kind mpi.CtxKind, seq uint64, sendbuf []byte, count int, dt mpi.Datatype, op mpi.Op, root int, req *Request, recvbuf []byte) *descriptor {
	pr := e.pr
	n := count * dt.Size()
	rank, size := c.Rank(), c.Size()

	pr.NIC().DisableSignals()

	// The descriptor, its accumulator and its child list all come from
	// the engine's recycle pool; every field is overwritten here.
	d := e.getDesc()
	if cap(d.acc) >= n {
		d.acc = d.acc[:n]
	} else {
		d.acc = make([]byte, n)
	}
	pr.P.Spin(pr.CM.HostCopy(n))
	copy(d.acc, sendbuf[:n])

	d.ctx = c.Ctx(kind)
	d.seq = seq
	d.tag = seqTag(seq)
	// The descriptor lives in world rank space: packets match on their
	// world SrcRank and the upward send addresses a world rank, so root,
	// parent and the pending list are all translated here (identity on
	// the world communicator, where the tree math already is world-wide).
	d.root = c.World(root)
	// A topology-aware tree applies only to the blocking reduce context
	// on the world communicator: the split-phase operations run their
	// leaf/root sides on the flat shape, so their internal nodes must
	// stay flat to match, and sub-comms always reduce over the flat tree.
	if t := e.treeFor(root, size); t != nil && kind == mpi.CtxReduce && c.IsWorld() {
		d.parent = t.Parent(rank)
		d.pending = t.AppendChildren(d.pending[:0], rank)
	} else {
		d.parent = coll.Parent(rank, root, size)
		d.pending = coll.AppendChildren(d.pending[:0], rank, root, size)
	}
	if d.parent >= 0 {
		d.parent = c.World(d.parent)
	}
	for i, ch := range d.pending {
		d.pending[i] = c.World(ch)
	}
	d.count = count
	d.dt = dt
	d.op = op
	d.req = req
	d.recvbuf = recvbuf
	d.completed = false
	d.created = pr.P.Now()
	e.pushDesc(d)
	e.drainUBQ(d)
	return d
}

// syncPhase walks the remaining children inside the Reduce call: drain
// whatever the NIC already delivered, optionally linger for stragglers
// per the §IV-E delay policy, then delegate the rest to the asynchronous
// component and return (Fig. 3 right-hand column).
func (e *Engine) syncPhase(d *descriptor, size, count int) {
	pr := e.pr
	e.inSync++

	// Trigger progress: the hook consumes our children's packets.
	pr.ProgressPoll()

	if !d.completed {
		if wait := e.delay.Delay(size, count); wait > 0 {
			deadline := pr.P.Now() + wait
			for !d.completed && pr.P.Now() < deadline {
				if pr.ProgressFor(deadline - pr.P.Now()) {
					if !d.completed {
						continue
					}
					e.Metrics.DelayHits++
				}
			}
			if !d.completed {
				e.Metrics.DelayExpirations++
			}
		}
	}

	e.inSync--
	// Fig. 3 exit arc: enable signals iff reductions remain outstanding.
	e.updateSignals()
}

// seqTag folds an instance number into a message tag (kept identical to
// the coll package's encoding for wire compatibility).
func seqTag(seq uint64) int32 { return int32(seq & 0x7FFFFFFF) }

// String summarizes engine state for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("engine(rank=%d, desc=%d, ubq=%d)", e.pr.Rank(), len(e.descQ), len(e.ubq))
}
