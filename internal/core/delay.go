package core

import (
	"time"

	"abred/internal/sim"
)

// DelayPolicy implements the §IV-E optimization: before exiting
// MPI_Reduce with children still outstanding, linger briefly so nearly
// on-time children complete inside the call and no signal is needed.
// Too short and late children never catch up; too long and the call
// pays unnecessary latency.
type DelayPolicy interface {
	// Delay returns how long the synchronous phase may linger, given
	// the number of processes in the reduction and the element count.
	Delay(nprocs, count int) sim.Time
}

// NoDelay exits immediately — the paper's default behaviour.
type NoDelay struct{}

// Delay returns zero.
func (NoDelay) Delay(int, int) sim.Time { return 0 }

// ProcCountDelay is the paper's "simple scheme in which we calculated
// the delay based on the number of processes involved in the reduction":
// Base plus PerProc for each participant, capped at Max.
type ProcCountDelay struct {
	Base    sim.Time
	PerProc sim.Time
	Max     sim.Time
}

// DefaultProcCountDelay returns a conservative tuning: one link latency
// of slack per process, capped at 50 µs.
func DefaultProcCountDelay() ProcCountDelay {
	return ProcCountDelay{
		Base:    2 * time.Microsecond,
		PerProc: 1 * time.Microsecond,
		Max:     50 * time.Microsecond,
	}
}

// Delay implements DelayPolicy.
func (p ProcCountDelay) Delay(nprocs, _ int) sim.Time {
	d := p.Base + sim.Time(nprocs)*p.PerProc
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	return d
}

// FixedDelay always lingers for D; useful in ablation studies.
type FixedDelay struct{ D sim.Time }

// Delay implements DelayPolicy.
func (f FixedDelay) Delay(int, int) sim.Time { return f.D }
