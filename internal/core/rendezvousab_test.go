package core

import (
	"testing"
	"time"

	"abred/internal/coll"
	"abred/internal/mpi"
	"abred/internal/sim"
)

// bigCount makes payloads comfortably beyond the 16 KiB eager limit.
const bigCount = 4096 // 32 KiB of float64

func bigInput(rank int) []byte {
	vals := make([]float64, bigCount)
	for i := range vals {
		vals[i] = float64(rank + i%7)
	}
	return mpi.Float64sToBytes(vals)
}

func bigExpected(size int) []float64 {
	want := make([]float64, bigCount)
	for r := 0; r < size; r++ {
		for i := range want {
			want[i] += float64(r + i%7)
		}
	}
	return want
}

func checkBig(t *testing.T, got []byte, size int) {
	t.Helper()
	want := bigExpected(size)
	vals := mpi.BytesToFloat64s(got)
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("element %d = %v, want %v", i, vals[i], want[i])
		}
	}
}

// TestRendezvousABCorrect: large-message bypass reductions produce
// exact results across sizes, roots and skew.
func TestRendezvousABCorrect(t *testing.T) {
	for _, size := range []int{2, 4, 8} {
		for _, root := range []int{0, size - 1} {
			size, root := size, root
			var got []byte
			engines := runWorld(size, int64(size+root), func(r *ctxRank) {
				r.e.EnableRendezvousAB()
				if r.w.Rank()%2 == 1 {
					r.p.SpinInterruptible(sim.Time(r.w.Rank()) * 150 * us)
				}
				out := make([]byte, bigCount*8)
				r.e.Reduce(r.w, bigInput(r.w.Rank()), out, bigCount, mpi.Float64, mpi.OpSum, root)
				r.p.SpinInterruptible(5 * time.Millisecond)
				coll.Barrier(r.w)
				if r.w.Rank() == root {
					got = out
				}
			})
			checkBig(t, got, size)
			for i, e := range engines {
				if e.Metrics.SizeFallbacks != 0 {
					t.Errorf("size=%d rank %d fell back despite rendezvous AB", size, i)
				}
			}
		}
	}
}

// TestRendezvousABStreamsLateChildAsync: a very late large child must
// be streamed and combined without the parent re-entering MPI.
func TestRendezvousABStreamsLateChildAsync(t *testing.T) {
	size := 4 // node 2 internal, child 3
	var got []byte
	var parentInCall sim.Time
	engines := runWorld(size, 41, func(r *ctxRank) {
		r.e.EnableRendezvousAB()
		if r.w.Rank() == 3 {
			r.p.SpinInterruptible(800 * us)
		}
		out := make([]byte, bigCount*8)
		t0 := r.p.Now()
		r.e.Reduce(r.w, bigInput(r.w.Rank()), out, bigCount, mpi.Float64, mpi.OpSum, 0)
		if r.w.Rank() == 2 {
			parentInCall = r.p.Now() - t0
		}
		// Only computation from here: the RTS/CTS/Data handshake and
		// the combine must all run from signal handlers.
		r.p.SpinInterruptible(8 * time.Millisecond)
		coll.Barrier(r.w)
		if r.w.Rank() == 0 {
			got = out
		}
	})
	checkBig(t, got, size)
	m := engines[2].Metrics
	if m.RendezvousChildren == 0 {
		t.Errorf("parent streamed no rendezvous children: %+v", m)
	}
	if m.AsyncChildren == 0 {
		t.Errorf("late large child was not combined asynchronously: %+v", m)
	}
	if parentInCall > 400*us {
		t.Errorf("parent blocked %v in Reduce; bypass should return early", parentInCall)
	}
}

// TestRendezvousABEarlyRTS: the large child's announcement arriving
// before the parent's Reduce is queued and consumed from the AB
// unexpected queue.
func TestRendezvousABEarlyRTS(t *testing.T) {
	size := 4
	var got []byte
	engines := runWorld(size, 42, func(r *ctxRank) {
		r.e.EnableRendezvousAB()
		out := make([]byte, bigCount*8)
		switch r.w.Rank() {
		case 1:
			r.p.SpinInterruptible(500 * us)
			r.w.Send(2, 5, []byte{1})
		case 2:
			r.p.SpinInterruptible(300 * us)
			r.w.Recv(1, 5, make([]byte, 1)) // progress queues child 3's RTS
			if r.e.UBQLen() == 0 {
				t.Error("early large-child RTS not in the AB unexpected queue")
			}
		}
		r.e.Reduce(r.w, bigInput(r.w.Rank()), out, bigCount, mpi.Float64, mpi.OpSum, 0)
		r.p.SpinInterruptible(8 * time.Millisecond)
		coll.Barrier(r.w)
		if r.w.Rank() == 0 {
			got = out
		}
	})
	checkBig(t, got, size)
	if engines[2].Metrics.EarlyMessages == 0 {
		t.Error("no early messages consumed")
	}
}

// TestRendezvousABMatchesEagerResults: the same reduction via eager
// (small) and rendezvous (large) paths agree with the reference on a
// shared prefix.
func TestRendezvousABPinAccounting(t *testing.T) {
	size := 4
	engines := runWorld(size, 43, func(r *ctxRank) {
		r.e.EnableRendezvousAB()
		out := make([]byte, bigCount*8)
		r.e.Reduce(r.w, bigInput(r.w.Rank()), out, bigCount, mpi.Float64, mpi.OpSum, 0)
		r.p.SpinInterruptible(8 * time.Millisecond)
		coll.Barrier(r.w)
		// Everything transient must be unpinned: only the eager pool
		// remains registered.
		if pool := 64 * r.w.Proc().CM.C.EagerThreshold; r.w.Proc().Mem.PinnedBytes() != pool {
			t.Errorf("rank %d leaked %d pinned bytes", r.w.Rank(), r.w.Proc().Mem.PinnedBytes()-pool)
		}
	})
	for i, e := range engines {
		if e.OutstandingDescriptors() != 0 || e.UBQLen() != 0 {
			t.Errorf("rank %d not quiescent", i)
		}
		if e.pr.NIC().SignalsEnabled() {
			t.Errorf("rank %d signals still on", i)
		}
	}
}

// TestRendezvousABDefaultOffFallsBack: without the opt-in, the paper's
// fallback behaviour is preserved.
func TestRendezvousABDefaultOffFallsBack(t *testing.T) {
	size := 4
	engines := runWorld(size, 44, func(r *ctxRank) {
		out := make([]byte, bigCount*8)
		r.e.Reduce(r.w, bigInput(r.w.Rank()), out, bigCount, mpi.Float64, mpi.OpSum, 0)
		coll.Barrier(r.w)
	})
	for i, e := range engines {
		if e.Metrics.SizeFallbacks != 1 {
			t.Errorf("rank %d: fallbacks = %d, want 1 (paper default)", i, e.Metrics.SizeFallbacks)
		}
		if e.Metrics.RendezvousChildren != 0 {
			t.Errorf("rank %d streamed children without opt-in", i)
		}
	}
}

// TestRendezvousABBackToBack: several large reductions outstanding with
// a consistently late child (§IV-D scenario at rendezvous scale).
func TestRendezvousABBackToBack(t *testing.T) {
	size := 4
	const rounds = 3
	var roots [rounds]float64
	runWorld(size, 45, func(r *ctxRank) {
		r.e.EnableRendezvousAB()
		out := make([]byte, bigCount*8)
		for iter := 0; iter < rounds; iter++ {
			if r.w.Rank() == 3 {
				r.p.SpinInterruptible(600 * us)
			}
			in := make([]float64, bigCount)
			for i := range in {
				in[i] = float64(r.w.Rank() * (iter + 1))
			}
			r.e.Reduce(r.w, mpi.Float64sToBytes(in), out, bigCount, mpi.Float64, mpi.OpSum, 0)
			if r.w.Rank() == 0 {
				roots[iter] = mpi.BytesToFloat64s(out)[0]
			}
		}
		r.p.SpinInterruptible(20 * time.Millisecond)
		coll.Barrier(r.w)
	})
	for iter := 0; iter < rounds; iter++ {
		want := float64((0 + 1 + 2 + 3) * (iter + 1))
		if roots[iter] != want {
			t.Errorf("round %d = %v, want %v", iter, roots[iter], want)
		}
	}
}
