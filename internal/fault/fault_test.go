package fault

import (
	"testing"
	"time"

	"abred/internal/fabric"
)

func TestZeroConfigDisabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero Config must be disabled")
	}
	if (Config{Seed: 42}).Enabled() {
		t.Error("a bare seed injects nothing and must stay disabled")
	}
	if New(Config{Seed: 42}) != nil {
		t.Error("New must return nil for a disabled config")
	}
}

func TestEnabledVariants(t *testing.T) {
	cases := []Config{
		{Rule: Rule{Drop: 0.1}},
		{Rule: Rule{Dup: 0.1}},
		{Rule: Rule{Jitter: time.Microsecond, JitterP: 0.5}},
		{Links: []Link{{Src: 0, Dst: 1, Rule: Rule{Drop: 1}}}},
		{Scripts: []Script{{Src: 0, Dst: 1, Nth: 3}}},
	}
	for i, c := range cases {
		if !c.Enabled() {
			t.Errorf("case %d: %+v must be enabled", i, c)
		}
		if New(c) == nil {
			t.Errorf("case %d: New returned nil for an enabled config", i)
		}
	}
	// A config whose only links carry zero rules injects nothing.
	if (Config{Links: []Link{{Src: 0, Dst: 1}}}).Enabled() {
		t.Error("zero-rule link override must not enable the plan")
	}
}

// TestScriptedNthDrop: the script drops exactly the Nth frame on its
// link and nothing else, anywhere.
func TestScriptedNthDrop(t *testing.T) {
	p := New(Config{Scripts: []Script{{Src: 0, Dst: 1, Nth: 3}}})
	for i := 1; i <= 5; i++ {
		v := p.Judge(0, 1)
		if v.Drop != (i == 3) {
			t.Errorf("frame %d on (0,1): drop = %v", i, v.Drop)
		}
	}
	for i := 0; i < 5; i++ {
		if v := p.Judge(1, 0); v != (fabric.Verdict{}) {
			t.Errorf("unscripted link faulted: %+v", v)
		}
	}
}

// TestDeterminism: two plans compiled from the same config return the
// same verdict sequence for the same Judge call sequence.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, Rule: Rule{Drop: 0.3, Dup: 0.2, Jitter: 10 * time.Microsecond, JitterP: 0.5}}
	p1, p2 := New(cfg), New(cfg)
	diff := 0
	for i := 0; i < 500; i++ {
		src, dst := i%3, (i+1)%3
		if p1.Judge(src, dst) != p2.Judge(src, dst) {
			diff++
		}
	}
	if diff != 0 {
		t.Errorf("%d of 500 verdicts differ between identically-seeded plans", diff)
	}
}

func TestSeedChangesVerdicts(t *testing.T) {
	mk := func(seed int64) string {
		p := New(Config{Seed: seed, Rule: Rule{Drop: 0.5}})
		out := make([]byte, 200)
		for i := range out {
			if p.Judge(0, 1).Drop {
				out[i] = '1'
			}
		}
		return string(out)
	}
	if mk(1) == mk(2) {
		t.Error("different seeds produced identical drop sequences")
	}
}

func TestLoopbackNeverFaulted(t *testing.T) {
	p := New(Config{Rule: Rule{Drop: 1, Dup: 1, Jitter: time.Microsecond, JitterP: 1}})
	for i := 0; i < 10; i++ {
		if v := p.Judge(2, 2); v != (fabric.Verdict{}) {
			t.Fatalf("loopback faulted: %+v", v)
		}
	}
}

// TestLinkOverride: a per-link rule replaces the cluster-wide default
// on that directed link only.
func TestLinkOverride(t *testing.T) {
	p := New(Config{
		Rule:  Rule{Drop: 1},
		Links: []Link{{Src: 0, Dst: 1, Rule: Rule{}}}, // perfect link amid chaos
	})
	for i := 0; i < 10; i++ {
		if p.Judge(0, 1).Drop {
			t.Fatal("overridden link dropped a frame")
		}
		if !p.Judge(1, 0).Drop {
			t.Fatal("default rule not applied to the reverse link")
		}
	}
}

// TestJitterDelayRange: jitter verdicts carry a positive delay bounded
// by the rule's Jitter.
func TestJitterDelayRange(t *testing.T) {
	max := 10 * time.Microsecond
	p := New(Config{Seed: 3, Rule: Rule{Jitter: max, JitterP: 1}})
	for i := 0; i < 100; i++ {
		v := p.Judge(0, 1)
		if v.Delay <= 0 || v.Delay > max {
			t.Fatalf("jitter delay %v outside (0, %v]", v.Delay, max)
		}
	}
}
