// Package fault builds deterministic fault plans for the fabric: seeded
// per-link frame drop, duplication and reorder jitter, plus scripted
// "drop the Nth frame on link (s,d)" losses for regression tests that
// need a specific failure rather than a statistical one.
//
// A Plan implements fabric.Injector. Every random decision comes from
// one dedicated stream seeded by Config.Seed — never from the kernel's
// numbered streams (which feed skew generation), so turning faults on
// or off cannot perturb any other randomized quantity, and two runs
// with the same seed make identical drop decisions frame for frame.
// Determinism holds because the simulation injects frames in a fixed
// order: the Nth Judge call is always about the same frame.
//
// Loopback frames (src == dst) never cross the switch and are never
// faulted; GM's reliability layer relies on that (it does not sequence
// loopback traffic).
package fault

import (
	"math/rand"

	"abred/internal/fabric"
	"abred/internal/sim"
)

// Rule is the stochastic fault profile of a link.
type Rule struct {
	Drop    float64  // per-frame drop probability
	Dup     float64  // per-frame duplication probability
	Jitter  sim.Time // max extra delivery delay when jitter fires
	JitterP float64  // probability a frame is jittered
}

// Link overrides the cluster-wide default rule on one directed link.
type Link struct {
	Src, Dst int
	Rule
}

// Script drops the Nth frame injected on one directed link.
type Script struct {
	Src, Dst int
	Nth      uint64 // 1-based frame ordinal on that link
}

// Config describes a fault plan. The zero Config is a clean fabric.
// The embedded Rule is the cluster-wide default; Links override it per
// directed link.
type Config struct {
	Seed int64 // dedicated fault stream, never shared with skew RNG
	Rule
	Links   []Link
	Scripts []Script
}

// Enabled reports whether the config injects any fault at all — the
// cluster leaves fabric.Inject nil (the allocation-free, byte-identical
// fast path) when it returns false.
func (c Config) Enabled() bool {
	if c.Rule != (Rule{}) || len(c.Scripts) > 0 {
		return true
	}
	for _, l := range c.Links {
		if l.Rule != (Rule{}) {
			return true
		}
	}
	return false
}

// Plan is a compiled fault plan for one simulation. Plans hold mutable
// state (the RNG, per-link frame counts) and must not be shared across
// concurrently running kernels — compile one per cluster from the same
// Config; identical configs yield identical behavior.
type Plan struct {
	rng    *rand.Rand
	def    Rule
	rules  map[[2]int]Rule
	counts map[[2]int]uint64          // frames seen per link, for scripts
	script map[[2]int]map[uint64]bool // scripted drops by link and ordinal
}

// New compiles cfg into a Plan, or nil when cfg injects nothing.
func New(cfg Config) *Plan {
	if !cfg.Enabled() {
		return nil
	}
	p := &Plan{
		rng: rand.New(rand.NewSource(cfg.Seed)),
		def: cfg.Rule,
	}
	if len(cfg.Links) > 0 {
		p.rules = make(map[[2]int]Rule, len(cfg.Links))
		for _, l := range cfg.Links {
			p.rules[[2]int{l.Src, l.Dst}] = l.Rule
		}
	}
	if len(cfg.Scripts) > 0 {
		p.counts = make(map[[2]int]uint64)
		p.script = make(map[[2]int]map[uint64]bool, len(cfg.Scripts))
		for _, s := range cfg.Scripts {
			key := [2]int{s.Src, s.Dst}
			if p.script[key] == nil {
				p.script[key] = make(map[uint64]bool)
			}
			p.script[key][s.Nth] = true
		}
	}
	return p
}

// Judge implements fabric.Injector: it decides the fate of the next
// frame on link (src, dst).
func (p *Plan) Judge(src, dst int) fabric.Verdict {
	var v fabric.Verdict
	if src == dst {
		return v // loopback never crosses the switch
	}
	key := [2]int{src, dst}
	if p.script != nil {
		n := p.counts[key] + 1
		p.counts[key] = n
		if s := p.script[key]; s != nil && s[n] {
			v.Drop = true
			return v
		}
	}
	r := p.def
	if p.rules != nil {
		if o, ok := p.rules[key]; ok {
			r = o
		}
	}
	if r.Drop > 0 && p.rng.Float64() < r.Drop {
		v.Drop = true
		return v
	}
	if r.Dup > 0 && p.rng.Float64() < r.Dup {
		v.Dup = true
	}
	if r.JitterP > 0 && r.Jitter > 0 && p.rng.Float64() < r.JitterP {
		v.Delay = sim.Time(p.rng.Int63n(int64(r.Jitter))) + 1
	}
	return v
}
