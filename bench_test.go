package abred

// One testing.B benchmark per figure of the paper's evaluation (§VI),
// plus microbenchmarks of the primitives underneath. The figure
// benchmarks report the paper's metrics (microseconds of per-node CPU,
// factor of improvement, reduction latency) via b.ReportMetric; the
// full sweeps that regenerate each figure's table live in cmd/abbench.
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"testing"
	"time"

	"abred/internal/bench"
	"abred/internal/cluster"
	"abred/internal/coll"
	"abred/internal/model"
	"abred/internal/mpi"
	"abred/internal/sim"
)

const benchIters = 12 // virtual iterations per figure sample

func reportCPU(b *testing.B, nab, ab bench.CPUUtilResult) {
	b.ReportMetric(float64(nab.AvgCPU)/float64(time.Microsecond), "nab_cpu_us")
	b.ReportMetric(float64(ab.AvgCPU)/float64(time.Microsecond), "ab_cpu_us")
	b.ReportMetric(float64(nab.AvgCPU)/float64(ab.AvgCPU), "factor")
}

// BenchmarkFig6 samples Fig. 6: CPU utilization and improvement factor
// on 32 heterogeneous nodes as maximum skew grows.
func BenchmarkFig6(b *testing.B) {
	for _, skew := range []time.Duration{0, 200, 600, 1000} {
		skew := skew * time.Microsecond
		for _, count := range []int{4, 128} {
			count := count
			b.Run(fmt.Sprintf("skew=%v/elems=%d", skew, count), func(b *testing.B) {
				var nab, ab bench.CPUUtilResult
				for i := 0; i < b.N; i++ {
					seed := int64(i + 1)
					nab = bench.CPUUtil(bench.Config{Specs: model.PaperCluster32(), Count: count,
						Mode: bench.NonAppBypass, MaxSkew: skew, Iters: benchIters, Seed: seed})
					ab = bench.CPUUtil(bench.Config{Specs: model.PaperCluster32(), Count: count,
						Mode: bench.AppBypass, MaxSkew: skew, Iters: benchIters, Seed: seed})
				}
				reportCPU(b, nab, ab)
			})
		}
	}
}

// BenchmarkFig7 samples Fig. 7: the improvement factor versus system
// size at maximum skew (1000 µs).
func BenchmarkFig7(b *testing.B) {
	for _, size := range []int{4, 8, 16, 32} {
		size := size
		b.Run(fmt.Sprintf("nodes=%d", size), func(b *testing.B) {
			var nab, ab bench.CPUUtilResult
			for i := 0; i < b.N; i++ {
				seed := int64(i + 1)
				nab = bench.CPUUtil(bench.Config{Specs: model.PaperCluster(size), Count: 4,
					Mode: bench.NonAppBypass, MaxSkew: time.Millisecond, Iters: benchIters, Seed: seed})
				ab = bench.CPUUtil(bench.Config{Specs: model.PaperCluster(size), Count: 4,
					Mode: bench.AppBypass, MaxSkew: time.Millisecond, Iters: benchIters, Seed: seed})
			}
			reportCPU(b, nab, ab)
		})
	}
}

// BenchmarkFig8 samples Fig. 8: CPU utilization without artificial skew;
// only natural (barrier-release and hardware) skew drives the gap.
func BenchmarkFig8(b *testing.B) {
	for _, size := range []int{8, 32} {
		size := size
		for _, count := range []int{4, 128} {
			count := count
			b.Run(fmt.Sprintf("nodes=%d/elems=%d", size, count), func(b *testing.B) {
				var nab, ab bench.CPUUtilResult
				for i := 0; i < b.N; i++ {
					seed := int64(i + 1)
					nab = bench.CPUUtil(bench.Config{Specs: model.PaperCluster(size), Count: count,
						Mode: bench.NonAppBypass, Iters: benchIters, Seed: seed})
					ab = bench.CPUUtil(bench.Config{Specs: model.PaperCluster(size), Count: count,
						Mode: bench.AppBypass, Iters: benchIters, Seed: seed})
				}
				reportCPU(b, nab, ab)
			})
		}
	}
}

// BenchmarkFig9 samples Fig. 9: single-element reduction latency on the
// heterogeneous cluster (a) and the homogeneous 700 MHz cluster (b).
func BenchmarkFig9(b *testing.B) {
	run := func(b *testing.B, specs []model.NodeSpec) {
		var nab, ab bench.LatencyResult
		for i := 0; i < b.N; i++ {
			seed := int64(i + 1)
			nab = bench.Latency(bench.Config{Specs: specs, Count: 1, Mode: bench.NonAppBypass, Iters: benchIters, Seed: seed})
			ab = bench.Latency(bench.Config{Specs: specs, Count: 1, Mode: bench.AppBypass, Iters: benchIters, Seed: seed})
		}
		b.ReportMetric(float64(nab.AvgLatency)/float64(time.Microsecond), "nab_lat_us")
		b.ReportMetric(float64(ab.AvgLatency)/float64(time.Microsecond), "ab_lat_us")
	}
	for _, size := range []int{2, 8, 32} {
		size := size
		b.Run(fmt.Sprintf("hetero/nodes=%d", size), func(b *testing.B) { run(b, model.PaperCluster(size)) })
	}
	for _, size := range []int{2, 8, 16} {
		size := size
		b.Run(fmt.Sprintf("homog700/nodes=%d", size), func(b *testing.B) { run(b, model.Homogeneous700(size)) })
	}
}

// BenchmarkFig10 samples Fig. 10: reduction latency versus message size
// on 32 nodes; the ab-nab gap should stay roughly constant.
func BenchmarkFig10(b *testing.B) {
	for _, count := range []int{1, 16, 128} {
		count := count
		b.Run(fmt.Sprintf("elems=%d", count), func(b *testing.B) {
			var nab, ab bench.LatencyResult
			for i := 0; i < b.N; i++ {
				seed := int64(i + 1)
				nab = bench.Latency(bench.Config{Specs: model.PaperCluster32(), Count: count, Mode: bench.NonAppBypass, Iters: benchIters, Seed: seed})
				ab = bench.Latency(bench.Config{Specs: model.PaperCluster32(), Count: count, Mode: bench.AppBypass, Iters: benchIters, Seed: seed})
			}
			b.ReportMetric(float64(nab.AvgLatency)/float64(time.Microsecond), "nab_lat_us")
			b.ReportMetric(float64(ab.AvgLatency)/float64(time.Microsecond), "ab_lat_us")
			b.ReportMetric(float64(ab.AvgLatency-nab.AvgLatency)/float64(time.Microsecond), "gap_us")
		})
	}
}

// BenchmarkAblationDelay measures the §IV-E exit-delay heuristic: how
// lingering in MPI_Reduce trades signals for in-call time.
func BenchmarkAblationDelay(b *testing.B) {
	for _, delay := range []time.Duration{0, 15 * time.Microsecond, 60 * time.Microsecond} {
		delay := delay
		b.Run(fmt.Sprintf("delay=%v", delay), func(b *testing.B) {
			var r bench.CPUUtilResult
			for i := 0; i < b.N; i++ {
				cfg := bench.Config{Specs: model.PaperCluster32(), Count: 4, Mode: bench.AppBypass,
					MaxSkew: 200 * time.Microsecond, Iters: benchIters, Seed: int64(i + 1)}
				if delay > 0 {
					cfg.Delay = fixedDelay(delay)
				}
				r = bench.CPUUtil(cfg)
			}
			b.ReportMetric(float64(r.AvgCPU)/float64(time.Microsecond), "ab_cpu_us")
			b.ReportMetric(float64(r.Signals), "signals")
		})
	}
}

// BenchmarkAblationNICReduce measures the NIC-based extension against
// the host-side implementations.
func BenchmarkAblationNICReduce(b *testing.B) {
	for _, count := range []int{4, 128} {
		count := count
		b.Run(fmt.Sprintf("elems=%d", count), func(b *testing.B) {
			var nic bench.CPUUtilResult
			for i := 0; i < b.N; i++ {
				nic = bench.CPUUtil(bench.Config{Specs: model.PaperCluster32(), Count: count,
					Mode: bench.NICBased, MaxSkew: 500 * time.Microsecond, Iters: benchIters, Seed: int64(i + 1)})
			}
			b.ReportMetric(float64(nic.AvgCPU)/float64(time.Microsecond), "nic_cpu_us")
		})
	}
}

// BenchmarkScaleProjection extends the comparison to 128 nodes (the
// paper's §VII future work).
func BenchmarkScaleProjection(b *testing.B) {
	for _, size := range []int{64, 128} {
		size := size
		b.Run(fmt.Sprintf("nodes=%d", size), func(b *testing.B) {
			var nab, ab bench.CPUUtilResult
			for i := 0; i < b.N; i++ {
				seed := int64(i + 1)
				nab = bench.CPUUtil(bench.Config{Specs: model.PaperCluster(size), Count: 4,
					Mode: bench.NonAppBypass, MaxSkew: time.Millisecond, Iters: 6, Seed: seed})
				ab = bench.CPUUtil(bench.Config{Specs: model.PaperCluster(size), Count: 4,
					Mode: bench.AppBypass, MaxSkew: time.Millisecond, Iters: 6, Seed: seed})
			}
			reportCPU(b, nab, ab)
		})
	}
}

// BenchmarkReduceRound measures one full reduction round (reduce +
// barrier) across a 32-node virtual cluster, per implementation — the
// cost of simulating the paper's unit of work.
func BenchmarkReduceRound(b *testing.B) {
	for _, mode := range []struct {
		name string
		ab   bool
	}{{"default", false}, {"app-bypass", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			cl := cluster.New(cluster.Config{Specs: model.PaperCluster32(), Seed: 1})
			b.ResetTimer()
			cl.Run(func(n *cluster.Node, w *mpi.Comm) {
				in := make([]byte, 32)
				out := make([]byte, 32)
				for i := 0; i < b.N; i++ {
					if mode.ab {
						n.Engine.Reduce(w, in, out, 4, mpi.Float64, mpi.OpSum, 0)
					} else {
						coll.Reduce(w, in, out, 4, mpi.Float64, mpi.OpSum, 0)
					}
					coll.Barrier(w)
				}
			})
		})
	}
}

// BenchmarkOpKernels measures the reduction arithmetic kernels.
func BenchmarkOpKernels(b *testing.B) {
	for _, count := range []int{4, 128, 4096} {
		count := count
		b.Run(fmt.Sprintf("sum-float64-%d", count), func(b *testing.B) {
			dst := make([]byte, count*8)
			src := make([]byte, count*8)
			b.SetBytes(int64(count * 8))
			for i := 0; i < b.N; i++ {
				mpi.Apply(mpi.OpSum, mpi.Float64, dst, src, count)
			}
		})
	}
}

// BenchmarkSimKernel measures raw event throughput of the DES kernel.
func BenchmarkSimKernel(b *testing.B) {
	b.Run("events", func(b *testing.B) {
		k := sim.New(1)
		n := 0
		var fn func()
		fn = func() {
			n++
			if n < b.N {
				k.After(time.Microsecond, fn)
			}
		}
		k.After(time.Microsecond, fn)
		k.Run()
	})
	b.Run("proc-switch", func(b *testing.B) {
		k := sim.New(1)
		k.Spawn("p", func(p *sim.Proc) {
			for i := 0; i < b.N; i++ {
				p.Sleep(time.Microsecond)
			}
		})
		k.Run()
	})
}

// fixedDelay adapts a duration to the core.DelayPolicy interface via
// the bench config (kept local to avoid exporting test helpers).
type fixedDelay time.Duration

func (f fixedDelay) Delay(int, int) sim.Time { return sim.Time(f) }

// BenchmarkAblationRendezvousAB measures the §V-B rendezvous-mode
// extension against the paper's large-message fallback.
func BenchmarkAblationRendezvousAB(b *testing.B) {
	for _, rv := range []bool{false, true} {
		rv := rv
		name := "fallback"
		if rv {
			name = "rendezvous-ab"
		}
		b.Run(name, func(b *testing.B) {
			var r bench.CPUUtilResult
			for i := 0; i < b.N; i++ {
				r = bench.CPUUtil(bench.Config{Specs: model.PaperCluster(8), Count: 4096,
					Mode: bench.AppBypass, MaxSkew: 800 * time.Microsecond,
					Iters: 6, Seed: int64(i + 1), RendezvousAB: rv})
			}
			b.ReportMetric(float64(r.AvgCPU)/float64(time.Microsecond), "cpu_us")
		})
	}
}
