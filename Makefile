# Tier-1 gate: everything must build, vet clean, pass the full suite,
# and pass the race detector in short mode (short bounds the ~10x race
# slowdown on the heavier sweep tests). This is what CI runs on every
# change.
.PHONY: check
check:
	go build ./...
	go vet ./...
	go test ./...
	go test -race -short ./...

.PHONY: test
test:
	go build ./... && go test ./...

# Regenerate every figure on a full worker pool and record the sweep's
# execution metrics (wall-clock, speedup, events/sec) in BENCH_sweep.json,
# then run the large-scale projection out to 1024 nodes and record kernel
# performance (events/sec, allocs/event, microbenchmark vs. the recorded
# pre-overhaul baseline) in BENCH_kernel.json.
.PHONY: bench
bench:
	go run ./cmd/abbench -fig all -ablations -parallel 0 -sweepjson BENCH_sweep.json
	go run ./cmd/abscale -sizes 32,128,512,1024 -iters 100 -parallel 0 -csv -benchjson BENCH_kernel.json

# The kernel throughput benchmark alone (Go benchmark form).
.PHONY: bench-kernel
bench-kernel:
	go test ./internal/bench -run '^$$' -bench BenchmarkKernelEventsPerSec -benchtime 3x -count 1

# Paranoia target: the figure set must be byte-identical serial vs
# parallel. Slow; the same property is asserted by TestParallelDeterminism.
.PHONY: determinism
determinism:
	go run ./cmd/abbench -fig all -iters 60 -csv -parallel 1 -sweepjson /tmp/abred_s.json > /tmp/abred_serial.txt
	go run ./cmd/abbench -fig all -iters 60 -csv -parallel 8 -sweepjson /tmp/abred_p.json > /tmp/abred_parallel.txt
	cmp /tmp/abred_serial.txt /tmp/abred_parallel.txt
	@echo "serial and parallel figure output byte-identical"
