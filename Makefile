# Tier-1 gate: everything must build, vet clean, pass the full suite,
# and pass the race detector in short mode (short bounds the ~10x race
# slowdown on the heavier sweep tests). This is what CI runs on every
# change.
.PHONY: check
check:
	go build ./...
	go vet ./...
	go test ./...
	go test -race -short ./...

.PHONY: test
test:
	go build ./... && go test ./...

# Regenerate every figure on a full worker pool and record the sweep's
# execution metrics (wall-clock, speedup, events/sec) in BENCH_sweep.json,
# then run the large-scale projection — the standard 32–1024 grid plus
# the 2048–16384 scaling envelope and the 1024–16384 crossbar-vs-fat-tree
# topology sweep — and record kernel performance (events/sec,
# allocs/event, peak heap, microbenchmark and sweep numbers vs. the
# recorded pre-overhaul baselines) plus the topology table in
# BENCH_kernel.json. Both commands draw clusters from the reuse pool
# (-reuse, on by default). -engine flow adds the flow-engine scaling
# grid (65536–1048576 nodes, recorded as flow_sweep); -jobs adds the
# multi-tenant sweep (concurrent jobs × oversubscription × placement,
# recorded as tenancy_sweep).
.PHONY: bench
bench:
	go run ./cmd/abbench -fig all -ablations -parallel 0 -sweepjson BENCH_sweep.json
	go run ./cmd/abscale -sizes 32,128,512,1024 -iters 100 -parallel 0 \
		-toposizes 1024,2048,4096,8192,16384 -topoiters 6 \
		-pdessize 16384 -pdeslps 1,2,4 -pdesiters 6 \
		-engine flow -flowsizes 65536,262144,1048576 -flowiters 3 \
		-flowpdessizes 65536,262144,1048576 -flowpdeslps 1,2,4 -flowpdesiters 3 \
		-jobs 4,8,16 -oversub 1,8 -place random,greedy \
		-csv -benchjson BENCH_kernel.json

# Profile the scaling sweep: CPU and heap profiles of the standard grid,
# ready for `go tool pprof abscale.cpu.pprof`.
.PHONY: profile
profile:
	go run ./cmd/abscale -sizes 32,128,512,1024 -iters 100 -bigsizes "" \
		-cpuprofile abscale.cpu.pprof -memprofile abscale.mem.pprof
	@echo "wrote abscale.cpu.pprof and abscale.mem.pprof"

# The kernel throughput benchmark alone (Go benchmark form).
.PHONY: bench-kernel
bench-kernel:
	go test ./internal/bench -run '^$$' -bench BenchmarkKernelEventsPerSec -benchtime 3x -count 1

# Run the scenario service locally (POST specs to :8080/run).
.PHONY: serve
serve:
	go run ./cmd/abserve -addr :8080 -cachedir /tmp/abserve-cache

# Performance-regression gate: rerun the kernel microbenchmark and fail
# if events/sec or allocs/event degrade beyond a CI95-derived noise band
# vs the numbers committed in BENCH_kernel.json. allocs/event is
# machine-independent and gated tightly; events/sec is host-dependent,
# so its band is generous — the gate catches collapses, not hosts.
.PHONY: gate
gate:
	go run ./cmd/abgate -bench BENCH_kernel.json -v

# Load-test the scenario service: an in-process server, 8 concurrent
# clients, 150 requests over a small cycling scenario set — cold
# computes, warm cache hits and single-flight dedups in one sub-minute
# run. Fails on any non-200 or if the cache never warmed.
.PHONY: loadtest
loadtest:
	go run ./cmd/abload -n 150 -c 8 -nodes 64

# Paranoia target: the figure set must be byte-identical serial vs
# parallel. Slow; the same property is asserted by TestParallelDeterminism.
.PHONY: determinism
determinism:
	go run ./cmd/abbench -fig all -iters 60 -csv -parallel 1 -sweepjson /tmp/abred_s.json > /tmp/abred_serial.txt
	go run ./cmd/abbench -fig all -iters 60 -csv -parallel 8 -sweepjson /tmp/abred_p.json > /tmp/abred_parallel.txt
	cmp /tmp/abred_serial.txt /tmp/abred_parallel.txt
	@echo "serial and parallel figure output byte-identical"
